// Package selector is the public inference API of PML-MPI: given a
// collective name and a named feature map, it returns the predicted best
// algorithm. Every call is instrumented — tracing spans for feature
// extraction, forest evaluation, and the overall decision; counters and a
// latency histogram in the metrics registry; and a ring buffer of recent
// decisions served on /debug/decisions.
package selector

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/analytics"
	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/cache"
	"github.com/pml-mpi/pmlmpi/pkg/forest"
	"github.com/pml-mpi/pmlmpi/pkg/modelhealth"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

// DefaultAlgorithms maps each collective's class index to a human-readable
// algorithm name (Open MPI tuned-collective algorithm families). Classes
// beyond the table fall back to "class_<n>".
// Class order must stay aligned with pkg/perfmodel's candidate lists for
// the collectives both sides know (pinned by a perfmodel test): natively
// trained bundles encode perfmodel class indices.
var DefaultAlgorithms = map[string][]string{
	"allgather": {"recursive_doubling", "bruck", "ring", "neighbor_exchange"},
	"alltoall":  {"linear", "pairwise", "modified_bruck", "linear_sync", "two_proc"},
	"broadcast": {"binomial_tree", "pipeline", "scatter_allgather"},
}

// Decision records one completed selection, as surfaced on /debug/decisions.
type Decision struct {
	Time       time.Time          `json:"time"`
	RequestID  string             `json:"request_id,omitempty"`
	Collective string             `json:"collective"`
	Features   map[string]float64 `json:"features"`
	Algorithm  string             `json:"algorithm"`
	Class      int                `json:"class"`
	Probs      []float64          `json:"probs"`
	Votes      []int              `json:"votes"`
	// Margin is the soft-vote confidence: the gap between the top two
	// entries of Probs (forest.Margin). Identical across evaluator modes
	// because both produce bit-identical Probs.
	Margin float64 `json:"margin"`
	// LowMargin flags a margin below the model-health warn threshold —
	// the forest nearly tied two algorithms. Always false when no
	// observatory is configured.
	LowMargin bool  `json:"low_margin,omitempty"`
	LatencyNS int64 `json:"latency_ns"`
	// Generation is the model generation that produced this decision (0
	// when serving from a static, registry-less source). Because cache keys
	// are generation-prefixed, a cached decision's generation always
	// matches the generation whose forest computed it.
	Generation uint64 `json:"generation,omitempty"`
	// Cached is true when the decision was served from the feature-keyed
	// decision cache instead of a fresh forest evaluation.
	Cached bool `json:"cached,omitempty"`
}

// DefaultCacheQuantum is the feature quantization step used for cache keys
// when Config.CacheQuantum is zero: features within 1e-6 of each other map
// to the same cached decision.
const DefaultCacheQuantum = 1e-6

// Forest evaluator modes (Config.ForestEval / the -forest-eval flag). The
// two evaluators are bit-identical by construction — compiled is the fast
// SoA descent, pointer the reference tree walk kept for differential
// testing and escape-hatch rollback.
const (
	EvalCompiled = "compiled"
	EvalPointer  = "pointer"
)

// ValidEvalMode reports whether m names a known forest evaluator mode.
func ValidEvalMode(m string) bool { return m == EvalCompiled || m == EvalPointer }

// Config tunes a Selector.
type Config struct {
	// RingSize is the capacity of the recent-decision buffer (default 128).
	RingSize int
	// Algorithms overrides DefaultAlgorithms when non-nil.
	Algorithms map[string][]string
	// Cache, when non-nil, memoizes decisions keyed by the collective name
	// plus the quantized feature vector. Cached Decision payloads (probs,
	// votes, features) are shared across callers and must not be mutated.
	Cache *cache.Cache
	// CacheQuantum is the quantization step applied to each feature before
	// key derivation (default DefaultCacheQuantum).
	CacheQuantum float64
	// BatchWorkers bounds SelectBatch's worker pool (default GOMAXPROCS).
	BatchWorkers int
	// ParallelTreeThreshold enables concurrent tree evaluation for forests
	// with at least this many trees (0 disables it — the default — since
	// goroutine fan-out only pays off for large ensembles). It only applies
	// to the pointer evaluator; the compiled evaluator parallelizes by
	// vector in PredictBatch instead.
	ParallelTreeThreshold int
	// ForestEval picks the forest evaluator: EvalCompiled (the default,
	// used when empty) or EvalPointer. Both produce bit-identical
	// predictions; pointer is the differential reference.
	ForestEval string
	// Shadow, when non-nil, receives every completed decision so a staged
	// candidate model can be evaluated against live traffic off the
	// response path (see the registry package).
	Shadow ShadowSink
	// SLO, when non-nil, receives every Select outcome (latency + success
	// flag) so rolling SLO windows track the serving path. The sink must be
	// cheap and non-blocking; pkg/slo's Tracker qualifies.
	SLO SLOSink
	// Health, when non-nil, receives every completed decision (margin,
	// features, latency) off the response path for drift scoring, margin
	// telemetry, scorecards, and anomaly capture. A concrete pointer —
	// not an interface — so escape analysis keeps the stack feature
	// buffer on the stack and the warm path allocation-free.
	Health *modelhealth.Observatory
}

// SLOSink receives per-Select outcomes for rolling SLO evaluation.
// Implemented by *slo.Tracker; an interface here keeps the selector free of
// a hard dependency on the slo package.
type SLOSink interface {
	Record(seconds float64, ok bool)
}

// Selector performs instrumented algorithm selection over the active bundle
// of a Source. The bundle can be hot-swapped under it: every Select reads
// the (bundle, generation) pair once with a single atomic load, so each
// decision is internally consistent even while a promotion is in flight.
type Selector struct {
	src        Source
	o          *obs.Obs
	algorithms map[string][]string
	ring       *decisionRing
	cache      *cache.Cache
	quantum    float64
	agg        *analytics.Aggregator
	shadow     ShadowSink
	slo        SLOSink
	health     *modelhealth.Observatory

	batchWorkers  int
	parallelTrees int
	treeWorkers   int
	forestEval    string

	selections *obs.Counter
	selErrors  *obs.Counter
	duration   *obs.Histogram
	batches    *obs.Counter
	batchSize  *obs.Histogram

	// Per-bundle instruments, re-pointed at each generation swap.
	gLoaded    *obs.Gauge
	gSize      *obs.Gauge
	gTrained   *obs.Gauge
	gTrees     *obs.Gauge
	hPredict   *obs.Histogram
	swapsTotal *obs.Counter
}

// Select-duration path label values: a cold selection walks the forest, a
// cache hit skips it.
const (
	PathCold     = "cold"
	PathCacheHit = "cache_hit"
)

// batchSizeBuckets are the histogram buckets for SelectBatch request sizes.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// New builds a Selector over a fixed, validated bundle — shorthand for
// NewFromSource(Static(b), ...) for tests and single-model deployments.
func New(b *bundle.Bundle, o *obs.Obs, cfg Config) *Selector {
	return NewFromSource(Static(b), o, cfg)
}

// NewFromSource builds a Selector over a swappable bundle source,
// registering its instruments (selection counter, error counter,
// prediction-latency histogram, bundle gauges) in o's registry. It
// instruments the source's current active bundle (if any) and subscribes to
// swaps: each promotion re-points the bundle gauges, instruments the new
// generation's forests, and flushes the decision cache (generation-prefixed
// keys already make old entries unreachable; the flush reclaims them).
func NewFromSource(src Source, o *obs.Obs, cfg Config) *Selector {
	algos := cfg.Algorithms
	if algos == nil {
		algos = DefaultAlgorithms
	}
	quantum := cfg.CacheQuantum
	if quantum <= 0 {
		quantum = DefaultCacheQuantum
	}
	workers := cfg.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	treeWorkers := runtime.GOMAXPROCS(0)
	if treeWorkers > 8 {
		treeWorkers = 8
	}
	evalMode := cfg.ForestEval
	if evalMode == "" {
		evalMode = EvalCompiled
	}
	reg := o.Registry
	s := &Selector{
		src:           src,
		o:             o,
		algorithms:    algos,
		ring:          newDecisionRing(cfg.RingSize),
		cache:         cfg.Cache,
		quantum:       quantum,
		batchWorkers:  workers,
		parallelTrees: cfg.ParallelTreeThreshold,
		treeWorkers:   treeWorkers,
		forestEval:    evalMode,
		shadow:        cfg.Shadow,
		slo:           cfg.SLO,
		health:        cfg.Health,
		agg:           analytics.New(nil),
		selections: reg.Counter("pmlmpi_selections_total",
			"Completed algorithm selections.", "collective", "algorithm"),
		selErrors: reg.Counter("pmlmpi_selection_errors_total",
			"Failed algorithm selections.", "collective", "reason"),
		duration: reg.Histogram("pmlmpi_select_duration_seconds",
			"End-to-end Select latency, split by cold vs. cache-hit path.",
			obs.LatencyBuckets, "collective", "path"),
		batches: reg.Counter("pmlmpi_batch_requests_total",
			"SelectBatch calls."),
		batchSize: reg.Histogram("pmlmpi_batch_size_items",
			"Items per SelectBatch call.", batchSizeBuckets),
		gLoaded:  reg.Gauge("pmlmpi_bundle_loaded", "1 when a model bundle is loaded."),
		gSize:    reg.Gauge("pmlmpi_bundle_size_bytes", "Size of the loaded bundle file."),
		gTrained: reg.Gauge("pmlmpi_bundle_trained_systems", "Systems the bundle was trained on."),
		gTrees:   reg.Gauge("pmlmpi_bundle_forest_trees", "Trees per collective forest.", "collective"),
		hPredict: reg.Histogram("pmlmpi_forest_predict_duration_seconds",
			"Wall time of one forest evaluation.", obs.LatencyBuckets, "collective"),
		swapsTotal: reg.Counter("pmlmpi_selector_bundle_swaps_total",
			"Generation swaps observed by the selector."),
	}

	if b, gen := src.Active(); b != nil {
		s.instrumentBundle(b)
		if s.health != nil {
			s.health.OnSwap(gen, b)
		}
	}
	src.Subscribe(func(b *bundle.Bundle, gen uint64) {
		s.swapsTotal.Inc()
		s.instrumentBundle(b)
		if s.cache != nil {
			flushed := s.cache.Flush()
			s.o.Logger.Info("decision cache flushed on bundle swap",
				"generation", gen, "entries_flushed", flushed)
		}
		// Rotate generation-scoped model-health state (drift sketches,
		// scorecard) alongside the cache flush, so the new generation
		// starts with a clean quality record.
		if s.health != nil {
			s.health.OnSwap(gen, b)
		}
	})
	return s
}

// Health returns the model-health observatory, or nil when none is
// configured.
func (s *Selector) Health() *modelhealth.Observatory { return s.health }

// instrumentBundle points the per-bundle gauges at b and wires its forests
// into the predict-latency histogram. Safe to call while other goroutines
// evaluate b or earlier generations (forest instrumentation is atomic).
func (s *Selector) instrumentBundle(b *bundle.Bundle) {
	s.gLoaded.Set(1)
	s.gSize.Set(float64(b.SizeBytes))
	s.gTrained.Set(float64(len(b.TrainedOn)))
	for name, c := range b.Collectives {
		s.gTrees.Set(float64(len(c.Forest.Trees)), name)
		observe := s.hPredict.Bind(name).Observe
		c.Forest.Instrument(observe)
		if cf := c.Compiled(); cf != nil {
			cf.Instrument(observe)
		}
	}
}

// Analytics snapshots the per-collective × per-algorithm selection rollup
// (counts, cache-hit share, latency quantiles), as served on
// /debug/analytics.
func (s *Selector) Analytics() []analytics.Row { return s.agg.Snapshot() }

// Bundle returns the currently active model bundle (nil when the source
// has no active generation).
func (s *Selector) Bundle() *bundle.Bundle {
	b, _ := s.src.Active()
	return b
}

// Source returns the bundle source the selector reads from.
func (s *Selector) Source() Source { return s.src }

// ForestEval returns the active forest evaluator mode (EvalCompiled or
// EvalPointer), as surfaced on /healthz.
func (s *Selector) ForestEval() string { return s.forestEval }

// Recent returns up to n recent decisions, newest first (n <= 0 for all).
func (s *Selector) Recent(n int) []Decision { return s.ring.last(n) }

// RecentFiltered returns up to n recent decisions for one collective,
// newest first (n <= 0 for all; empty collective matches everything).
func (s *Selector) RecentFiltered(n int, collective string) []Decision {
	return s.ring.lastFiltered(n, collective)
}

// AlgorithmName maps a class index of a collective to its algorithm name.
func (s *Selector) AlgorithmName(collective string, class int) string {
	if names, ok := s.algorithms[collective]; ok && class >= 0 && class < len(names) {
		return names[class]
	}
	return fmt.Sprintf("class_%d", class)
}

// Select predicts the best algorithm for the collective given the named
// feature map. With a cache configured, a quantized-feature hit is the hot
// path: extraction, one sharded-map lookup, pre-bound instruments, a ring
// append, and — when head sampling picks the request — one cheap
// single-span trace record; no forest walk and no logging. Misses (and all
// calls when no cache is configured) take the fully traced path: one span
// per stage, histogram observations, and a structured log record.
func (s *Selector) Select(ctx context.Context, collective string, features map[string]float64) (*Decision, error) {
	if s.slo == nil {
		return s.doSelect(ctx, collective, features)
	}
	d, err := s.doSelect(ctx, collective, features)
	// Feed the SLO windows with the decision's own measured latency (no
	// extra clock reads on the hot path); failures count against the
	// availability budget with no latency contribution.
	if err != nil {
		s.slo.Record(0, false)
	} else {
		s.slo.Record(float64(d.LatencyNS)/1e9, true)
	}
	return d, err
}

// doSelect is the selection path proper; Select wraps it with SLO feeding.
func (s *Selector) doSelect(ctx context.Context, collective string, features map[string]float64) (*Decision, error) {
	b, gen := s.src.Active()
	if b == nil {
		s.selErrors.Inc(collective, "no_active_bundle")
		return nil, fmt.Errorf("no active model bundle (registry has nothing promoted)")
	}
	if s.cache == nil {
		d, err := s.selectTraced(ctx, b, gen, collective, features, nil, time.Time{}, 0)
		if err != nil {
			return nil, err
		}
		s.offerShadow(collective, features, d)
		return d, nil
	}
	start := time.Now()
	c, ok := b.Collective(collective)
	if !ok {
		s.selErrors.Inc(collective, "unknown_collective")
		return nil, fmt.Errorf("unknown collective %q (bundle has %v)", collective, b.CollectiveNames())
	}
	// Stack buffer for the feature vector: no allocation on the hit path.
	// Feature subsets never exceed the canonical space (currently 14
	// features), but fall back to the heap if that ever grows past 16.
	var xbuf [16]float64
	var x []float64
	if n := len(c.FeatureNames); n <= len(xbuf) {
		x = xbuf[:n]
	} else {
		x = make([]float64, n)
	}
	extractStart := time.Now()
	if err := c.VectorInto(x, features); err != nil {
		s.selErrors.Inc(collective, "missing_feature")
		return nil, err
	}
	extractDur := time.Since(extractStart)
	key := featureKey(gen, collective, x, s.quantum)
	if v, ok := s.cache.Get(key); ok {
		e := v.(cachedEntry)
		reqID := obs.RequestIDFrom(ctx)
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		elapsed := time.Since(start)
		// Per-request envelope around the shared cached payload; the
		// Features/Probs/Votes slices are shared and read-only.
		d := e.d
		d.Time = start
		d.RequestID = reqID
		d.LatencyNS = elapsed.Nanoseconds()
		d.Cached = true
		e.sel.Inc()
		e.lat.Observe(elapsed.Seconds())
		e.cell.Record(elapsed.Seconds(), true)
		if s.health != nil {
			s.health.RecordDecision(gen, collective, d.Algorithm,
				c.Features, x, d.Margin, true, d.LatencyNS)
		}
		s.ring.add(d)
		// The warm path must not be dark: when head sampling picks this
		// request, retain a single-span trace. SampleLeaf is one atomic
		// load when sampling is off, so unsampled hits pay ~nothing.
		if s.o.Tracer.SampleLeaf(ctx) {
			s.o.Tracer.RecordLeaf(ctx, "selector.cache_hit", start, elapsed, map[string]any{
				"collective": collective,
				"algorithm":  d.Algorithm,
				"class":      d.Class,
			})
		}
		s.offerShadow(collective, features, &d)
		return &d, nil
	}
	d, err := s.selectTraced(ctx, b, gen, collective, features, x, extractStart, extractDur)
	if err != nil {
		return nil, err
	}
	// Bind the metric series once at insert so hits touch neither the
	// label-join path nor the series map.
	s.cache.Put(key, cachedEntry{
		d:    *d,
		sel:  s.selections.Bind(collective, d.Algorithm),
		lat:  s.duration.Bind(collective, PathCacheHit),
		cell: s.agg.Cell(collective, d.Algorithm),
	})
	s.offerShadow(collective, features, d)
	return d, nil
}

// offerShadow forwards a completed decision to the shadow sink, if one is
// configured. The sink samples and copies internally; when shadowing is
// idle this is a nil check plus one atomic load.
func (s *Selector) offerShadow(collective string, features map[string]float64, d *Decision) {
	if s.shadow != nil {
		s.shadow.Offer(collective, features, d.Algorithm, d.Class, d.LatencyNS)
	}
}

// cachedEntry is the decision-cache payload: the memoized decision plus
// its pre-resolved metric series and analytics cell.
type cachedEntry struct {
	d    Decision
	sel  obs.BoundCounter
	lat  obs.BoundHistogram
	cell *analytics.Cell
}

// selectTraced is the fully instrumented selection path, evaluating against
// the (b, gen) snapshot its caller read from the source. A non-nil x is a
// pre-extracted feature vector (cache-miss path): extraction already ran to
// build the cache key, so instead of a live feature.extract span its
// measured timing (extractStart/extractDur) is backfilled into the sampled
// trace, keeping miss span trees as complete as cache-less ones.
func (s *Selector) selectTraced(ctx context.Context, b *bundle.Bundle, gen uint64, collective string, features map[string]float64, x []float64, extractStart time.Time, extractDur time.Duration) (*Decision, error) {
	ctx, reqID := obs.WithRequestID(ctx, obs.RequestIDFrom(ctx))
	ctx, decide := s.o.Tracer.Start(ctx, "selector.decide")
	decide.SetAttr("collective", collective)
	start := time.Now()

	c, ok := b.Collective(collective)
	if !ok {
		decide.End()
		s.selErrors.Inc(collective, "unknown_collective")
		return nil, fmt.Errorf("unknown collective %q (bundle has %v)", collective, b.CollectiveNames())
	}

	if x == nil {
		var extract *obs.Span
		var err error
		_, extract = s.o.Tracer.Start(ctx, "feature.extract")
		x, err = c.Vector(features)
		extract.End()
		if err != nil {
			decide.End()
			s.selErrors.Inc(collective, "missing_feature")
			return nil, err
		}
	} else if s.o.Tracer.SampleLeaf(ctx) {
		s.o.Tracer.RecordLeaf(ctx, "feature.extract", extractStart, extractDur, nil)
	}

	_, eval := s.o.Tracer.Start(ctx, "forest.eval")
	pred, err := s.predict(c, x)
	eval.End()
	if err != nil {
		decide.End()
		s.selErrors.Inc(collective, "forest_error")
		return nil, fmt.Errorf("collective %q: %w", collective, err)
	}

	elapsed := time.Since(start)
	decide.SetAttr("class", pred.Class)
	decide.End()

	algo := s.AlgorithmName(collective, pred.Class)
	s.selections.Inc(collective, algo)
	s.duration.Observe(elapsed.Seconds(), collective, PathCold)
	s.agg.Record(collective, algo, elapsed.Seconds(), false)

	margin := forest.Margin(pred.Probs)
	d := Decision{
		Time:       start,
		RequestID:  reqID,
		Collective: collective,
		Features:   copyFeatures(features),
		Algorithm:  algo,
		Class:      pred.Class,
		Probs:      pred.Probs,
		Votes:      pred.Votes,
		Margin:     margin,
		LatencyNS:  elapsed.Nanoseconds(),
		Generation: gen,
	}
	if s.health != nil {
		d.LowMargin = margin < s.health.MarginWarn()
		s.health.RecordDecision(gen, collective, algo,
			c.Features, x, margin, false, d.LatencyNS)
	}
	s.ring.add(d)

	s.o.Logger.WithCtx(ctx).Info("selection",
		"collective", collective,
		"algorithm", algo,
		"class", pred.Class,
		"latency_us", float64(elapsed.Microseconds()))
	return &d, nil
}

// predict runs the forest through the configured evaluator. In compiled
// mode (the default) it uses the collective's SoA forest, falling back to
// the pointer walk only if compilation failed for an in-memory bundle. In
// pointer mode it keeps the reference walk, fanning tree evaluation out
// across goroutines when the ensemble is large enough for that to pay off.
func (s *Selector) predict(c *bundle.Collective, x []float64) (forest.Prediction, error) {
	if s.forestEval != EvalPointer {
		if cf := c.Compiled(); cf != nil {
			return cf.Predict(x)
		}
	}
	if s.parallelTrees > 0 && len(c.Forest.Trees) >= s.parallelTrees {
		return c.Forest.PredictWith(x, s.treeWorkers)
	}
	return c.Forest.Predict(x)
}

// CacheStats snapshots the decision cache's counters; ok is false when no
// cache is configured.
func (s *Selector) CacheStats() (st cache.Stats, ok bool) {
	if s.cache == nil {
		return cache.Stats{}, false
	}
	return s.cache.Stats(), true
}

func copyFeatures(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Prediction re-exports the forest prediction type for callers that want
// raw ensemble output without the decision envelope.
type Prediction = forest.Prediction
