package selector

import (
	"context"
	"testing"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/cache"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

// newCachedSelector builds a selector over a synthetic bundle with the
// decision cache enabled.
func newCachedSelector(t testing.TB, cacheCfg cache.Config) (*Selector, *obs.Obs) {
	t.Helper()
	b, err := synth.New(synth.Config{Seed: 21, Trees: 16, Depth: 5})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewForTest()
	o.Logger.SetLevel(obs.LevelError)
	return New(b, o, Config{Cache: cache.New(cacheCfg, o.Registry)}), o
}

func TestSelectCacheHitReturnsSameDecision(t *testing.T) {
	s, _ := newCachedSelector(t, cache.Config{})
	ctx := context.Background()
	pt := synth.Points(21, 1)[0]

	cold, err := s.Select(ctx, "allgather", pt)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Error("first selection must be a miss")
	}
	warm, err := s.Select(ctx, "allgather", pt)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Error("second selection of the same point must hit the cache")
	}
	if warm.Class != cold.Class || warm.Algorithm != cold.Algorithm {
		t.Errorf("cached decision = class %d %q, want class %d %q",
			warm.Class, warm.Algorithm, cold.Class, cold.Algorithm)
	}
	if warm.RequestID == cold.RequestID {
		t.Error("cached decision must get its own request ID")
	}
	st, ok := s.CacheStats()
	if !ok || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v (ok=%v), want 1 hit / 1 miss", st, ok)
	}

	// A different collective with the same features is a distinct key.
	if d, err := s.Select(ctx, "alltoall", pt); err != nil {
		t.Fatal(err)
	} else if d.Cached {
		t.Error("different collective must not share a cache entry")
	}
}

func TestCacheKeyQuantization(t *testing.T) {
	s, _ := newCachedSelector(t, cache.Config{})
	ctx := context.Background()
	pt := synth.Points(22, 1)[0]
	if _, err := s.Select(ctx, "allgather", pt); err != nil {
		t.Fatal(err)
	}

	// Within a quantum (1e-6): same key, hit.
	near := map[string]float64{}
	for k, v := range pt {
		near[k] = v + 1e-8
	}
	d, err := s.Select(ctx, "allgather", near)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Cached {
		t.Error("sub-quantum perturbation should hit the cache")
	}

	// Far beyond a quantum: different key, miss.
	far := map[string]float64{}
	for k, v := range pt {
		far[k] = v + 0.5
	}
	d, err = s.Select(ctx, "allgather", far)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cached {
		t.Error("perturbation beyond the quantum should miss")
	}
}

func TestSelectWithoutCacheHasNoStats(t *testing.T) {
	b, err := synth.New(synth.Config{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	s := New(b, obs.NewForTest(), Config{})
	if _, err := s.Select(context.Background(), "allgather", synth.Points(23, 1)[0]); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.CacheStats(); ok {
		t.Error("CacheStats should report ok=false with no cache configured")
	}
}

func TestCachedDecisionsAppearInRing(t *testing.T) {
	s, _ := newCachedSelector(t, cache.Config{})
	ctx := context.Background()
	pt := synth.Points(24, 1)[0]
	s.Select(ctx, "allgather", pt)
	s.Select(ctx, "allgather", pt)
	recent := s.Recent(2)
	if len(recent) != 2 {
		t.Fatalf("ring holds %d decisions, want 2", len(recent))
	}
	if !recent[0].Cached || recent[1].Cached {
		t.Errorf("ring order wrong: newest cached=%v, oldest cached=%v", recent[0].Cached, recent[1].Cached)
	}
}

func TestCacheTTLExpiryForcesReevaluation(t *testing.T) {
	s, _ := newCachedSelector(t, cache.Config{TTL: time.Nanosecond})
	ctx := context.Background()
	pt := synth.Points(25, 1)[0]
	s.Select(ctx, "allgather", pt)
	time.Sleep(time.Millisecond) // let the nanosecond TTL lapse
	d, err := s.Select(ctx, "allgather", pt)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cached {
		t.Error("expired entry must be re-evaluated")
	}
	if st, _ := s.CacheStats(); st.Evictions != 1 {
		t.Errorf("stats = %+v, want exactly 1 TTL eviction", st)
	}
}
