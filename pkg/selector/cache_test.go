package selector

import (
	"context"
	"testing"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/cache"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

// newCachedSelector builds a selector over a synthetic bundle with the
// decision cache enabled.
func newCachedSelector(t testing.TB, cacheCfg cache.Config) (*Selector, *obs.Obs) {
	t.Helper()
	b, err := synth.New(synth.Config{Seed: 21, Trees: 16, Depth: 5})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewForTest()
	o.Logger.SetLevel(obs.LevelError)
	return New(b, o, Config{Cache: cache.New(cacheCfg, o.Registry)}), o
}

func TestSelectCacheHitReturnsSameDecision(t *testing.T) {
	s, _ := newCachedSelector(t, cache.Config{})
	ctx := context.Background()
	pt := synth.Points(21, 1)[0]

	cold, err := s.Select(ctx, "allgather", pt)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Error("first selection must be a miss")
	}
	warm, err := s.Select(ctx, "allgather", pt)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Error("second selection of the same point must hit the cache")
	}
	if warm.Class != cold.Class || warm.Algorithm != cold.Algorithm {
		t.Errorf("cached decision = class %d %q, want class %d %q",
			warm.Class, warm.Algorithm, cold.Class, cold.Algorithm)
	}
	if warm.RequestID == cold.RequestID {
		t.Error("cached decision must get its own request ID")
	}
	st, ok := s.CacheStats()
	if !ok || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v (ok=%v), want 1 hit / 1 miss", st, ok)
	}

	// A different collective with the same features is a distinct key.
	if d, err := s.Select(ctx, "alltoall", pt); err != nil {
		t.Fatal(err)
	} else if d.Cached {
		t.Error("different collective must not share a cache entry")
	}
}

func TestCacheKeyQuantization(t *testing.T) {
	s, _ := newCachedSelector(t, cache.Config{})
	ctx := context.Background()
	pt := synth.Points(22, 1)[0]
	if _, err := s.Select(ctx, "allgather", pt); err != nil {
		t.Fatal(err)
	}

	// Within a quantum (1e-6): same key, hit.
	near := map[string]float64{}
	for k, v := range pt {
		near[k] = v + 1e-8
	}
	d, err := s.Select(ctx, "allgather", near)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Cached {
		t.Error("sub-quantum perturbation should hit the cache")
	}

	// Far beyond a quantum: different key, miss.
	far := map[string]float64{}
	for k, v := range pt {
		far[k] = v + 0.5
	}
	d, err = s.Select(ctx, "allgather", far)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cached {
		t.Error("perturbation beyond the quantum should miss")
	}
}

func TestSelectWithoutCacheHasNoStats(t *testing.T) {
	b, err := synth.New(synth.Config{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	s := New(b, obs.NewForTest(), Config{})
	if _, err := s.Select(context.Background(), "allgather", synth.Points(23, 1)[0]); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.CacheStats(); ok {
		t.Error("CacheStats should report ok=false with no cache configured")
	}
}

func TestCachedDecisionsAppearInRing(t *testing.T) {
	s, _ := newCachedSelector(t, cache.Config{})
	ctx := context.Background()
	pt := synth.Points(24, 1)[0]
	s.Select(ctx, "allgather", pt)
	s.Select(ctx, "allgather", pt)
	recent := s.Recent(2)
	if len(recent) != 2 {
		t.Fatalf("ring holds %d decisions, want 2", len(recent))
	}
	if !recent[0].Cached || recent[1].Cached {
		t.Errorf("ring order wrong: newest cached=%v, oldest cached=%v", recent[0].Cached, recent[1].Cached)
	}
}

func TestCacheTTLExpiryForcesReevaluation(t *testing.T) {
	s, _ := newCachedSelector(t, cache.Config{TTL: time.Nanosecond})
	ctx := context.Background()
	pt := synth.Points(25, 1)[0]
	s.Select(ctx, "allgather", pt)
	time.Sleep(time.Millisecond) // let the nanosecond TTL lapse
	d, err := s.Select(ctx, "allgather", pt)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cached {
		t.Error("expired entry must be re-evaluated")
	}
	if st, _ := s.CacheStats(); st.Evictions != 1 {
		t.Errorf("stats = %+v, want exactly 1 TTL eviction", st)
	}
}

// TestCacheHitIsNotDarkTelemetry is the warm-path blind-spot regression
// test: a cache hit MUST increment the selection counter, land in the
// decision ring (i.e. appear on /debug/decisions), feed the cache_hit
// latency histogram, show up in analytics, and — when sampled — leave a
// trace record. If any of these regress, the path serving ~all production
// traffic goes invisible again.
func TestCacheHitIsNotDarkTelemetry(t *testing.T) {
	s, o := newCachedSelector(t, cache.Config{})
	o.Traces.SetSampleRate(1.0) // sample everything
	ctx := context.Background()
	pt := synth.Points(31, 1)[0]

	cold, err := s.Select(ctx, "allgather", pt)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.Select(ctx, "allgather", pt)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("second selection must be a cache hit")
	}

	// Selection counter counts both paths.
	if got := s.selections.Value("allgather", cold.Algorithm); got != 2 {
		t.Errorf("selections counter = %v after 1 cold + 1 hit, want 2", got)
	}

	// The hit is in the ring, newest first, marked cached.
	recent := s.Recent(0)
	if len(recent) != 2 || !recent[0].Cached {
		t.Errorf("ring = %d decisions, newest cached=%v; want 2 with cached hit first",
			len(recent), len(recent) > 0 && recent[0].Cached)
	}

	// The duration histogram has one observation per path label.
	if got := s.duration.Count("allgather", PathCold); got != 1 {
		t.Errorf("cold duration count = %d, want 1", got)
	}
	if got := s.duration.Count("allgather", PathCacheHit); got != 1 {
		t.Errorf("cache_hit duration count = %d, want 1", got)
	}

	// Analytics aggregated both, attributing the hit.
	rows := s.Analytics()
	if len(rows) != 1 || rows[0].Count != 2 || rows[0].CacheHits != 1 {
		t.Errorf("analytics rows = %+v, want one row with count 2 / hits 1", rows)
	}

	// The hit left a single-span trace; the cold path left a full tree.
	var hitTraces, coldTraces int
	for _, tr := range o.Traces.List(0) {
		switch tr.Root {
		case "selector.cache_hit":
			hitTraces++
		case "selector.decide":
			coldTraces++
		}
	}
	if hitTraces != 1 || coldTraces != 1 {
		t.Errorf("traces: %d cache_hit / %d decide, want 1/1", hitTraces, coldTraces)
	}
}

func TestSampledSelectRetainsSpanTree(t *testing.T) {
	b, err := synth.New(synth.Config{Seed: 33, Trees: 8, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewForTest()
	o.Traces.SetSampleRate(1.0)
	s := New(b, o, Config{})
	if _, err := s.Select(context.Background(), "allgather", synth.Points(33, 1)[0]); err != nil {
		t.Fatal(err)
	}

	list := o.Traces.List(0)
	if len(list) != 1 {
		t.Fatalf("retained %d traces, want 1", len(list))
	}
	tr, ok := o.Traces.Get(list[0].TraceID)
	if !ok || tr.Root != "selector.decide" {
		t.Fatalf("trace = %+v", tr)
	}
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"selector.decide", "feature.extract", "forest.eval"} {
		if !names[want] {
			t.Errorf("span tree missing %q: %v", want, names)
		}
	}
}

func TestRecentFiltered(t *testing.T) {
	s, _ := newCachedSelector(t, cache.Config{})
	ctx := context.Background()
	pts := synth.Points(34, 3)
	for _, pt := range pts {
		s.Select(ctx, "allgather", pt)
		s.Select(ctx, "alltoall", pt)
	}
	if got := s.RecentFiltered(0, "allgather"); len(got) != 3 {
		t.Fatalf("allgather filter returned %d, want 3", len(got))
	} else {
		for _, d := range got {
			if d.Collective != "allgather" {
				t.Errorf("filtered result leaked %q", d.Collective)
			}
		}
	}
	if got := s.RecentFiltered(2, "alltoall"); len(got) != 2 {
		t.Errorf("limit 2 returned %d", len(got))
	}
	if got := s.RecentFiltered(0, "broadcast"); len(got) != 0 {
		t.Errorf("unknown collective returned %d decisions", len(got))
	}
}

func TestCacheMissTraceKeepsCompleteSpanTree(t *testing.T) {
	// The miss path extracts features before the cache lookup, outside any
	// span; the measured timing must still be backfilled into the sampled
	// trace so cache-enabled cold traces match cache-less ones.
	s, o := newCachedSelector(t, cache.Config{})
	o.Traces.SetSampleRate(1.0)
	if _, err := s.Select(context.Background(), "allgather", synth.Points(35, 1)[0]); err != nil {
		t.Fatal(err)
	}
	list := o.Traces.List(0)
	if len(list) != 1 {
		t.Fatalf("retained %d traces, want 1", len(list))
	}
	tr, _ := o.Traces.Get(list[0].TraceID)
	byName := map[string]obs.SpanRecord{}
	for _, sp := range tr.Spans {
		byName[sp.Name] = sp
	}
	root, ok := byName["selector.decide"]
	if !ok {
		t.Fatalf("no selector.decide root in %+v", tr.Spans)
	}
	for _, want := range []string{"feature.extract", "forest.eval"} {
		sp, ok := byName[want]
		if !ok {
			t.Fatalf("span tree missing %q: %+v", want, tr.Spans)
		}
		if sp.ParentID != root.SpanID {
			t.Errorf("%s parent = %q, want root %q", want, sp.ParentID, root.SpanID)
		}
	}
	if byName["feature.extract"].Start.After(byName["forest.eval"].Start) {
		t.Error("feature.extract should start before forest.eval")
	}
}
