package selector

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/cache"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

// TestConcurrentSelectStress hammers Select, SelectBatch, ring reads, and
// cache stats from 64 goroutines (run under -race in CI). The cache is
// sized so nothing evicts and every key is warmed up front, which makes
// the hit arithmetic exact: hits == total hammered items, misses ==
// distinct keys, i.e. hits == requests − distinct keys overall.
func TestConcurrentSelectStress(t *testing.T) {
	const (
		goroutines   = 64
		opsPerWorker = 40
		batchSize    = 8
		points       = 24
	)
	b, err := synth.New(synth.Config{Seed: 41, Trees: 16, Depth: 5})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewForTest()
	o.Logger.SetLevel(obs.LevelError)
	s := New(b, o, Config{
		RingSize:     64,
		Cache:        cache.New(cache.Config{MaxEntries: 4096}, o.Registry),
		BatchWorkers: 4,
	})
	ctx := context.Background()

	pts := synth.Points(41, points)
	collectives := b.CollectiveNames()
	distinctKeys := len(pts) * len(collectives)

	// Warm phase: touch every (collective, point) once, sequentially, so
	// every miss happens exactly once and the hammer phase is all hits.
	for _, c := range collectives {
		for _, pt := range pts {
			if _, err := s.Select(ctx, c, pt); err != nil {
				t.Fatalf("warm %s: %v", c, err)
			}
		}
	}
	if st, _ := s.CacheStats(); st.Misses != uint64(distinctKeys) || st.Hits != 0 {
		t.Fatalf("after warm-up: stats = %+v, want %d misses and 0 hits", st, distinctKeys)
	}

	var hammered atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				c := collectives[(g+i)%len(collectives)]
				switch i % 3 {
				case 0: // single select
					if _, err := s.Select(ctx, c, pts[(g*7+i)%len(pts)]); err != nil {
						t.Errorf("Select: %v", err)
						return
					}
					hammered.Add(1)
				case 1: // batch select
					reqs := make([]BatchRequest, batchSize)
					for j := range reqs {
						reqs[j] = BatchRequest{Collective: c, Features: pts[(g+i+j)%len(pts)]}
					}
					for _, r := range s.SelectBatch(ctx, reqs) {
						if r.Err != nil {
							t.Errorf("SelectBatch: %v", r.Err)
							return
						}
						if !r.Decision.Cached {
							t.Error("hammer-phase batch item missed the warmed cache")
							return
						}
					}
					hammered.Add(batchSize)
				case 2: // concurrent readers of the debug surfaces
					s.Recent(8)
					s.CacheStats()
				}
			}
		}(g)
	}
	wg.Wait()

	st, ok := s.CacheStats()
	if !ok {
		t.Fatal("cache disappeared")
	}
	if st.Hits != hammered.Load() {
		t.Errorf("cache hits = %d, want exactly the %d hammered requests", st.Hits, hammered.Load())
	}
	if st.Misses != uint64(distinctKeys) {
		t.Errorf("cache misses = %d, want the %d distinct keys", st.Misses, distinctKeys)
	}
	if st.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 (cache sized above the key space)", st.Evictions)
	}
	// The identity the issue asks for: hits == requests − distinct keys.
	totalRequests := hammered.Load() + uint64(distinctKeys)
	if st.Hits != totalRequests-uint64(distinctKeys) {
		t.Errorf("hits %d != requests %d − distinct keys %d", st.Hits, totalRequests, distinctKeys)
	}
	// And the obs counters must agree with the atomic stats.
	reg := o.Registry
	if got := reg.Counter("pmlmpi_cache_hits_total", "").Value(); got != float64(st.Hits) {
		t.Errorf("metrics hit counter = %v, stats say %d", got, st.Hits)
	}
	if got := reg.Counter("pmlmpi_cache_misses_total", "").Value(); got != float64(st.Misses) {
		t.Errorf("metrics miss counter = %v, stats say %d", got, st.Misses)
	}
}
