package selector

import (
	"github.com/pml-mpi/pmlmpi/pkg/bundle"
)

// Source supplies the selector's active model. The registry implements it
// for hot-swappable serving; Static wraps a fixed bundle for tests and
// single-model deployments.
type Source interface {
	// Active returns the bundle currently serving traffic and its
	// generation id. It sits on the Select hot path, so implementations
	// must be cheap — one atomic load, no locks. A nil bundle means no
	// model is currently active; Select fails fast in that case.
	Active() (*bundle.Bundle, uint64)
	// Subscribe registers fn to run after every swap of the active
	// generation, with the new active bundle and its generation id. fn runs
	// synchronously on the promoting goroutine, after the new generation is
	// visible to Active, and must not call back into the Source.
	Subscribe(fn func(b *bundle.Bundle, gen uint64))
}

// staticSource is a Source whose bundle never changes.
type staticSource struct{ b *bundle.Bundle }

// Static wraps a fixed bundle as a Source. Its generation id is 0 and it
// never notifies subscribers.
func Static(b *bundle.Bundle) Source { return staticSource{b: b} }

func (s staticSource) Active() (*bundle.Bundle, uint64)        { return s.b, 0 }
func (s staticSource) Subscribe(func(*bundle.Bundle, uint64)) {}

// ShadowSink receives completed live decisions so a staged candidate model
// can be evaluated against the same traffic off the response path. The
// registry's Shadow implements it. Offer must be cheap when shadowing is
// idle (no candidate staged or fraction zero) and must never block: the
// selector calls it on the Select hot path, including cache hits.
//
// The features map is only guaranteed valid for the duration of the call;
// implementations that retain it must copy.
type ShadowSink interface {
	Offer(collective string, features map[string]float64, algorithm string, class int, latencyNS int64)
}
