package selector

import (
	"context"
	"sync"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/cache"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

// swapSource is a minimal swappable Source for tests: the registry without
// the registry. swap() installs a new (bundle, generation) pair and fans it
// out to subscribers, exactly like a promote.
type swapSource struct {
	mu   sync.Mutex
	b    *bundle.Bundle
	gen  uint64
	subs []func(*bundle.Bundle, uint64)
}

func (s *swapSource) Active() (*bundle.Bundle, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b, s.gen
}

func (s *swapSource) Subscribe(fn func(*bundle.Bundle, uint64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs = append(s.subs, fn)
}

func (s *swapSource) swap(b *bundle.Bundle, gen uint64) {
	s.mu.Lock()
	s.b = b
	s.gen = gen
	subs := append([]func(*bundle.Bundle, uint64){}, s.subs...)
	s.mu.Unlock()
	for _, fn := range subs {
		fn(b, gen)
	}
}

func synthBundle(t *testing.T, seed int64) *bundle.Bundle {
	t.Helper()
	data, err := synth.JSON(synth.Config{Seed: seed})
	if err != nil {
		t.Fatalf("synth.JSON: %v", err)
	}
	b, err := bundle.Parse(data)
	if err != nil {
		t.Fatalf("bundle.Parse: %v", err)
	}
	return b
}

// predictClass evaluates b's forest for the collective directly, bypassing
// the selector, to establish ground truth per bundle.
func predictClass(t *testing.T, b *bundle.Bundle, collective string, features map[string]float64) int {
	t.Helper()
	c, ok := b.Collective(collective)
	if !ok {
		t.Fatalf("bundle has no collective %q", collective)
	}
	x, err := c.Vector(features)
	if err != nil {
		t.Fatalf("vector: %v", err)
	}
	pred, err := c.Forest.Predict(x)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	return pred.Class
}

// TestPromoteMidStreamServesNoStaleDecision is the stale-cache regression
// test for bundle hot-swap: warm the decision cache on generation A, swap to
// generation B, and assert every subsequent decision comes from B — correct
// generation tag, B's class (hence B's algorithm), never a cached answer
// computed by A. Points where A and B genuinely disagree are required, so a
// stale entry cannot hide behind coincidental agreement.
func TestPromoteMidStreamServesNoStaleDecision(t *testing.T) {
	const collective = "allgather"
	bundleA := synthBundle(t, 41)
	bundleB := synthBundle(t, 42)

	// Find ground truth for both bundles; demand at least one disagreement
	// so the assertion below has teeth.
	points := synth.Points(17, 64)
	classA := make([]int, len(points))
	classB := make([]int, len(points))
	disagreements := 0
	for i, p := range points {
		classA[i] = predictClass(t, bundleA, collective, p)
		classB[i] = predictClass(t, bundleB, collective, p)
		if classA[i] != classB[i] {
			disagreements++
		}
	}
	if disagreements == 0 {
		t.Fatal("seeds 41/42 produce identical predictions on every point; pick different seeds")
	}

	src := &swapSource{b: bundleA, gen: 1}
	o := obs.NewForTest()
	c := cache.New(cache.Config{MaxEntries: 1024}, o.Registry)
	s := NewFromSource(src, o, Config{Cache: c})
	ctx := context.Background()

	// Warm the cache on generation A: every point selected twice so the
	// second pass is served from cache.
	for pass := 0; pass < 2; pass++ {
		for i, p := range points {
			d, err := s.Select(ctx, collective, p)
			if err != nil {
				t.Fatalf("pre-swap Select: %v", err)
			}
			if d.Generation != 1 || d.Class != classA[i] {
				t.Fatalf("pre-swap decision = gen %d class %d, want gen 1 class %d",
					d.Generation, d.Class, classA[i])
			}
		}
	}
	if st, ok := s.CacheStats(); !ok || st.Hits == 0 {
		t.Fatalf("cache never hit during warmup: %+v", st)
	}

	// Promote B mid-stream.
	src.swap(bundleB, 2)

	for i, p := range points {
		d, err := s.Select(ctx, collective, p)
		if err != nil {
			t.Fatalf("post-swap Select: %v", err)
		}
		if d.Generation != 2 {
			t.Fatalf("post-swap decision tagged generation %d, want 2", d.Generation)
		}
		if d.Class != classB[i] {
			t.Fatalf("post-swap decision class %d, want %d (A would say %d) — stale cache entry served",
				d.Class, classB[i], classA[i])
		}
		if want := s.AlgorithmName(collective, classB[i]); d.Algorithm != want {
			t.Fatalf("post-swap algorithm %q, want %q", d.Algorithm, want)
		}
	}

	// SelectBatch must obey the same invariant.
	reqs := make([]BatchRequest, len(points))
	for i, p := range points {
		reqs[i] = BatchRequest{Collective: collective, Features: p}
	}
	for i, res := range s.SelectBatch(ctx, reqs) {
		if res.Err != nil {
			t.Fatalf("post-swap batch item %d: %v", i, res.Err)
		}
		if res.Decision.Generation != 2 || res.Decision.Class != classB[i] {
			t.Fatalf("post-swap batch decision = gen %d class %d, want gen 2 class %d",
				res.Decision.Generation, res.Decision.Class, classB[i])
		}
	}

	// Swapping back to A (a rollback) serves A's answers again — its old
	// generation-1 cache entries, if still resident, are valid for it.
	src.swap(bundleA, 1)
	for i, p := range points {
		d, err := s.Select(ctx, collective, p)
		if err != nil {
			t.Fatalf("post-rollback Select: %v", err)
		}
		if d.Generation != 1 || d.Class != classA[i] {
			t.Fatalf("post-rollback decision = gen %d class %d, want gen 1 class %d",
				d.Generation, d.Class, classA[i])
		}
	}
}

// TestSwapFlushesCacheAndCountsSwaps checks the subscriber side effects of a
// promote: the swap counter increments and the decision cache is flushed
// (old entries reclaimed eagerly, not just made unreachable).
func TestSwapFlushesCacheAndCountsSwaps(t *testing.T) {
	src := &swapSource{b: synthBundle(t, 41), gen: 1}
	o := obs.NewForTest()
	c := cache.New(cache.Config{MaxEntries: 1024}, o.Registry)
	s := NewFromSource(src, o, Config{Cache: c})

	points := synth.Points(5, 16)
	for _, p := range points {
		if _, err := s.Select(context.Background(), "alltoall", p); err != nil {
			t.Fatalf("Select: %v", err)
		}
	}
	if st, _ := s.CacheStats(); st.Entries == 0 {
		t.Fatal("cache is empty after warmup")
	}
	src.swap(synthBundle(t, 42), 2)
	if st, _ := s.CacheStats(); st.Entries != 0 {
		t.Fatalf("cache holds %d entries after swap, want 0 (flushed)", st.Entries)
	}

	if got := s.swapsTotal.Value(); got != 1 {
		t.Fatalf("swap counter = %v, want 1", got)
	}
}
