package selector

import (
	"context"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/cache"
	"github.com/pml-mpi/pmlmpi/pkg/modelhealth"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

// allocSelector builds a cached selector over a full-feature synthetic
// bundle, optionally with the model-health observatory wired in. The bundle
// carries a training reference for every default drift feature so the
// instrumented variant exercises the sketch path, window rotation included.
func allocSelector(t *testing.T, withHealth bool) *Selector {
	t.Helper()
	bd, err := synth.New(synth.Config{Seed: 51, Collectives: []string{"bench"}, Trees: 64, Depth: 8, Features: 14, Classes: 5})
	if err != nil {
		t.Fatal(err)
	}
	ref := bundle.FeatureDist{Edges: []float64{4, 64, 1024}, Counts: []uint64{10, 10, 10, 10}}
	bd.Stats = &bundle.FeatureStats{
		Source: "alloc-test",
		Features: map[string]bundle.FeatureDist{
			"num_nodes": ref, "ppn": ref, "log2_msg_size": ref,
		},
	}
	o := obs.NewForTest()
	o.Logger.SetLevel(obs.LevelError)
	cfg := Config{Cache: cache.New(cache.Config{}, o.Registry)}
	if withHealth {
		// A small window forces rotations (and so PSI recomputation) inside
		// the measured loop; rotation must be allocation-free too.
		cfg.Health = modelhealth.New(o.Registry, modelhealth.Config{Window: 32})
	}
	return New(bd, o, cfg)
}

// TestSelectHealthZeroAllocOverhead pins the observatory's hot-path
// contract: wiring model health into a selector adds zero allocations to
// the warm (cache-hit) Select path. Measured differentially so the guard
// tracks the baseline instead of a brittle absolute count.
func TestSelectHealthZeroAllocOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	pt := synth.Points(51, 1)[0]
	measure := func(s *Selector) float64 {
		ctx := context.Background()
		if _, err := s.Select(ctx, "bench", pt); err != nil { // warm the cache
			t.Fatal(err)
		}
		return testing.AllocsPerRun(2000, func() {
			d, err := s.Select(ctx, "bench", pt)
			if err != nil {
				t.Fatal(err)
			}
			if !d.Cached {
				t.Fatal("iteration missed the cache")
			}
		})
	}

	base := measure(allocSelector(t, false))
	instrumented := measure(allocSelector(t, true))
	if instrumented > base {
		t.Fatalf("model health adds %.1f allocations per warm Select (%.1f -> %.1f), want 0 added",
			instrumented-base, base, instrumented)
	}
}
