package selector

import "sync"

// decisionRing is a fixed-capacity ring buffer of the most recent
// decisions, newest first on read. Safe for concurrent use.
type decisionRing struct {
	mu   sync.Mutex
	buf  []Decision
	next int
	full bool
}

func newDecisionRing(capacity int) *decisionRing {
	if capacity <= 0 {
		capacity = 128
	}
	return &decisionRing{buf: make([]Decision, capacity)}
}

func (r *decisionRing) add(d Decision) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// last returns up to n decisions, most recent first. n <= 0 means all.
func (r *decisionRing) last(n int) []Decision {
	return r.lastFiltered(n, "")
}

// lastFiltered returns up to n decisions for one collective, most recent
// first. n <= 0 means all; an empty collective matches everything.
func (r *decisionRing) lastFiltered(n int, collective string) []Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.full {
		size = len(r.buf)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Decision, 0, n)
	for i := 1; i <= size && len(out) < n; i++ {
		idx := r.next - i
		if idx < 0 {
			idx += len(r.buf)
		}
		if collective != "" && r.buf[idx].Collective != collective {
			continue
		}
		out = append(out, r.buf[idx])
	}
	return out
}
